package ipc

// White-box tests of the endpoint's chain dictionary: the hash-keyed,
// equality-checked buckets behind Send's intern table and Recv's
// longest-proper-prefix response matching. These inject entries into
// the bucket map directly to drive the collision paths that real
// workloads essentially never hit.

import (
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// withProbe runs body on a live simulator thread with a fresh probe.
func withProbe(t *testing.T, body func(pr *profiler.Probe, prof *profiler.Profiler)) {
	t.Helper()
	prof := profiler.New("dict", profiler.ModeWhodunit)
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	s.Go("t", func(th *vclock.Thread) {
		body(prof.NewProbe(th, cpu), prof)
	})
	s.Run()
	s.Shutdown()
}

// TestLookupSentChecksEquality: a bucket holding a colliding entry (same
// bucket, different chain) must be resolved by chain equality, never by
// bucket position.
func TestLookupSentChecksEquality(t *testing.T) {
	e := NewEndpoint("dict")
	want := tranctx.Chain{1, 2}
	collider := tranctx.Chain{3, 4} // different chain, planted in want's bucket
	h := want.Hash()
	e.sent[h] = []sentEntry{
		{chain: collider, ctxt: profiler.TxnCtxt{Prefix: collider}},
		{chain: want, ctxt: profiler.TxnCtxt{Prefix: want}},
	}
	got, ok := e.lookupSent(want)
	if !ok {
		t.Fatal("lookupSent missed a chain present in its bucket")
	}
	if !got.Prefix.Equal(want) {
		t.Fatalf("lookupSent returned the colliding entry's context %v", got.Prefix)
	}
	// The collider sits in the wrong bucket for its own hash: looking it
	// up goes through its real bucket and misses — equality never spans
	// buckets.
	if _, ok := e.lookupSent(collider); ok {
		t.Fatal("lookupSent found a chain filed under a foreign bucket")
	}
	if _, ok := e.lookupSent(tranctx.Chain{9, 9}); ok {
		t.Fatal("lookupSent matched a never-sent chain")
	}
}

// TestSendInternsAndLatestWins: re-sending a chain whose entry already
// sits in a (colliding) bucket returns the stored chain without a new
// allocation or SendRecord, and overwrites the stored context — the
// latest send of a chain wins.
func TestSendInternsAndLatestWins(t *testing.T) {
	withProbe(t, func(pr *profiler.Probe, prof *profiler.Profiler) {
		e := NewEndpoint("dict")
		exit := pr.Enter("path_a")
		defer func() { pr.Exit(exit) }()

		// Materialise the exact chain Send will build for this context
		// and plant it behind a colliding entry.
		at := pr.CallCtxt()
		stored := append(append(tranctx.Chain{}, at.Prefix...), at.Local.Synopsis())
		collider := tranctx.Chain{0xdead, 0xbeef}
		sentinel := profiler.TxnCtxt{Prefix: tranctx.Chain{0x5e117}}
		e.sent[stored.Hash()] = []sentEntry{
			{chain: collider, ctxt: profiler.TxnCtxt{Prefix: collider}},
			{chain: stored, ctxt: sentinel},
		}

		msg := e.Send(pr, nil)
		if &msg.Chain[0] != &stored[0] {
			t.Error("Send materialised a fresh chain instead of interning the stored one")
		}
		if len(e.sends) != 0 {
			t.Errorf("Send recorded %d SendRecords for an already-known chain", len(e.sends))
		}
		entry := &e.sent[stored.Hash()][1]
		if entry.ctxt.Prefix.Equal(sentinel.Prefix) {
			t.Error("Send did not overwrite the stored context (latest send must win)")
		}
		if entry.ctxt.Key() != pr.Txn().Key() {
			t.Errorf("stored context %q, want the probe's %q", entry.ctxt.Key(), pr.Txn().Key())
		}
		// The colliding neighbour is untouched.
		if got := e.sent[stored.Hash()][0]; !got.ctxt.Prefix.Equal(collider) {
			t.Error("Send disturbed the colliding bucket neighbour")
		}

		// A genuinely new chain (fresh call path) appends entry + record.
		func() {
			defer pr.Exit(pr.Enter("path_b"))
			e.Send(pr, nil)
		}()
		if len(e.sends) != 1 {
			t.Errorf("new chain recorded %d SendRecords, want 1", len(e.sends))
		}
	})
}

// TestRecvLongestProperPrefix: a response chain matches the LONGEST
// proper prefix this endpoint sent; an exact match is not a proper
// prefix and classifies as a request.
func TestRecvLongestProperPrefix(t *testing.T) {
	withProbe(t, func(pr *profiler.Probe, prof *profiler.Profiler) {
		e := NewEndpoint("dict")
		root := prof.Table.Root()
		short := tranctx.Chain{10}
		long := tranctx.Chain{10, 20}
		ctxtShort := profiler.TxnCtxt{Prefix: tranctx.Chain{111}, Local: root}
		ctxtLong := profiler.TxnCtxt{Prefix: tranctx.Chain{222}, Local: root}
		e.sent[short.Hash()] = append(e.sent[short.Hash()], sentEntry{chain: short, ctxt: ctxtShort})
		e.sent[long.Hash()] = append(e.sent[long.Hash()], sentEntry{chain: long, ctxt: ctxtLong})

		if kind := e.Recv(pr, Msg{Chain: tranctx.Chain{10, 20, 30}}); kind != Response {
			t.Fatalf("chain extending a sent chain classified %v, want response", kind)
		}
		if !pr.Txn().Prefix.Equal(ctxtLong.Prefix) {
			t.Fatalf("restored %v, want the longest prefix's context %v", pr.Txn().Prefix, ctxtLong.Prefix)
		}

		if kind := e.Recv(pr, Msg{Chain: tranctx.Chain{10, 99}}); kind != Response {
			t.Fatal("chain extending only the short sent chain did not classify as response")
		}
		if !pr.Txn().Prefix.Equal(ctxtShort.Prefix) {
			t.Fatalf("restored %v, want the short prefix's context %v", pr.Txn().Prefix, ctxtShort.Prefix)
		}

		// Exactly the sent chain: no PROPER prefix matches — a request
		// that adopts the incoming chain as its context prefix.
		if kind := e.Recv(pr, Msg{Chain: short}); kind != Request {
			t.Fatal("exact sent chain classified as a response")
		}
		if !pr.Txn().Prefix.Equal(short) {
			t.Fatalf("request adopted prefix %v, want %v", pr.Txn().Prefix, short)
		}

		// A chain sharing no sent prefix is a plain request.
		foreign := tranctx.Chain{77, 88}
		if kind := e.Recv(pr, Msg{Chain: foreign}); kind != Request {
			t.Fatal("foreign chain classified as a response")
		}
		if !pr.Txn().Prefix.Equal(foreign) {
			t.Fatalf("request adopted prefix %v, want %v", pr.Txn().Prefix, foreign)
		}
	})
}
