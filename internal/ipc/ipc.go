// Package ipc implements transactional profiling across distribution
// (paper §5, §7.4): wrappers for message send and receive operations that
// piggy-back transaction context synopses on application data.
//
// On send, the wrapper computes the sender's transaction context at the
// send point (the call path, suffixed to any inherited context), interns
// it to a 4-byte synopsis, records the (chain → context) association, and
// attaches the synopsis chain to the message. On receive, the wrapper
// inspects the incoming chain: if a chain this endpoint previously sent is
// a proper prefix of it, the message is a *response* — the endpoint
// switches back to the CCT from which the request originated; otherwise
// it is a *request* and the receiver adopts the sender's chain as its
// context prefix.
//
// Messages travel either as values through simulator queues or as framed
// bytes over any io.ReadWriter (see Conn) for real transports.
package ipc

import (
	"encoding/binary"
	"fmt"
	"io"

	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
)

// Msg is one message: the piggy-backed synopsis chain plus application
// data. Data is used by in-memory transports; Payload by wire transports.
type Msg struct {
	Chain   tranctx.Chain
	Data    any
	Payload []byte
}

// Kind classifies a received message.
type Kind uint8

const (
	// Request means the receiver inherits the sender's context.
	Request Kind = iota
	// Response means a prefix of the chain originated at the receiver,
	// which switches back to the originating context (§5).
	Response
)

func (k Kind) String() string {
	if k == Response {
		return "response"
	}
	return "request"
}

// SendRecord is the stitching-metadata trace of one distinct sent chain.
type SendRecord struct {
	Chain    string // rendered synopsis chain
	FromKey  string // TxnCtxt key of the context the send originated from
	FromName string // human-readable context label
}

// sentEntry is one distinct sent chain with the context to restore when
// its response arrives.
type sentEntry struct {
	chain tranctx.Chain
	ctxt  profiler.TxnCtxt
}

// Endpoint is a stage's message-context bookkeeping: the dictionary of
// sent synopsis chains and the contexts to restore when their responses
// arrive. The dictionary is keyed by the chain's numeric hash with
// equality-checked buckets, so the steady-state send/receive path
// renders no strings; the human-readable SendRecord strings are built
// once per distinct chain.
type Endpoint struct {
	Stage string

	sent  map[uint64][]sentEntry // Chain.Hash -> candidate entries
	sends []SendRecord
}

// NewEndpoint returns an endpoint for the named stage.
func NewEndpoint(stage string) *Endpoint {
	return &Endpoint{Stage: stage, sent: make(map[uint64][]sentEntry)}
}

// lookupSent finds the context recorded for an exact chain.
func (e *Endpoint) lookupSent(ch tranctx.Chain) (profiler.TxnCtxt, bool) {
	bucket := e.sent[ch.Hash()]
	for i := range bucket {
		if bucket[i].chain.Equal(ch) {
			return bucket[i].ctxt, true
		}
	}
	return profiler.TxnCtxt{}, false
}

// Send builds a message carrying data, stamped with the probe's
// transaction context at the send point. The send wrapper of §7.4:
// compute the synopsis, associate the current CCT with it, piggy-back it.
//
// The chain dictionary doubles as an intern table: on a steady-state hit
// the stored chain is returned and Send allocates nothing — the chain is
// only materialised the first time a distinct (prefix, synopsis) pair is
// sent. Chains are immutable by convention throughout the repo (they are
// shared across messages, dictionary entries and stitch records), so
// handing out the stored slice is safe.
func (e *Endpoint) Send(pr *profiler.Probe, data any) Msg {
	at := pr.CallCtxt()
	last := at.Local.Synopsis()
	h := at.Prefix.HashWith(last)
	bucket := e.sent[h]
	for i := range bucket {
		if bucket[i].chain.EqualWith(at.Prefix, last) {
			bucket[i].ctxt = pr.Txn() // latest send of a chain wins
			return Msg{Chain: bucket[i].chain, Data: data}
		}
	}
	chain := make(tranctx.Chain, 0, len(at.Prefix)+1)
	chain = append(chain, at.Prefix...)
	chain = append(chain, last)
	e.sent[h] = append(bucket, sentEntry{chain: chain, ctxt: pr.Txn()})
	e.sends = append(e.sends, SendRecord{Chain: chain.String(), FromKey: pr.Txn().Key(), FromName: pr.Txn().Label()})
	return Msg{Chain: chain, Data: data}
}

// Recv classifies msg and switches the probe's transaction context
// accordingly: requests adopt the sender's chain as prefix (with a fresh
// local context); responses restore the context the matching request was
// sent from. The receive wrapper of §7.4.
func (e *Endpoint) Recv(pr *profiler.Probe, msg Msg) Kind {
	// Longest proper prefix of the incoming chain that we sent.
	for k := len(msg.Chain) - 1; k >= 1; k-- {
		if saved, ok := e.lookupSent(msg.Chain[:k]); ok {
			pr.SetTxn(saved)
			return Response
		}
	}
	// Adopt the sender's chain as prefix directly: chains are immutable
	// by convention, so no defensive copy is taken on this hot path.
	pr.SetTxn(profiler.TxnCtxt{Prefix: msg.Chain, Local: pr.Profiler().Table.Root()})
	return Request
}

// Sends returns the distinct chains this endpoint sent, with the contexts
// they originated from, for post-mortem stitching.
func (e *Endpoint) Sends() []SendRecord {
	out := make([]SendRecord, len(e.sends))
	copy(out, e.sends)
	return out
}

// --- Wire transport -------------------------------------------------

// maxFrame bounds wire frames (16 MiB) against corrupt length prefixes.
const maxFrame = 16 << 20

// WriteMsg frames msg onto w: u32 length, chain, payload bytes.
func WriteMsg(w io.Writer, msg Msg) error {
	chain := msg.Chain.AppendWire(nil)
	total := len(chain) + len(msg.Payload)
	if total > maxFrame {
		return fmt.Errorf("ipc: frame too large: %d bytes", total)
	}
	hdr := binary.BigEndian.AppendUint32(nil, uint32(total))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ipc: write header: %w", err)
	}
	if _, err := w.Write(chain); err != nil {
		return fmt.Errorf("ipc: write chain: %w", err)
	}
	if len(msg.Payload) > 0 {
		if _, err := w.Write(msg.Payload); err != nil {
			return fmt.Errorf("ipc: write payload: %w", err)
		}
	}
	return nil
}

// ReadMsg reads one framed message from r.
func ReadMsg(r io.Reader) (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, fmt.Errorf("ipc: read header: %w", err)
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > maxFrame {
		return Msg{}, fmt.Errorf("ipc: frame length %d exceeds max", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Msg{}, fmt.Errorf("ipc: read body: %w", err)
	}
	chain, n, err := tranctx.DecodeChain(buf)
	if err != nil {
		return Msg{}, err
	}
	return Msg{Chain: chain, Payload: buf[n:]}, nil
}

// Conn couples an Endpoint with a byte stream, giving the paper's
// transparent send/receive wrappers over sockets and pipes.
type Conn struct {
	E  *Endpoint
	RW io.ReadWriter
}

// Send wraps Endpoint.Send and writes the frame.
func (c *Conn) Send(pr *profiler.Probe, payload []byte) error {
	msg := c.E.Send(pr, nil)
	msg.Payload = payload
	return WriteMsg(c.RW, msg)
}

// Recv reads one frame, classifies it and switches the probe's context.
func (c *Conn) Recv(pr *profiler.Probe) ([]byte, Kind, error) {
	msg, err := ReadMsg(c.RW)
	if err != nil {
		return nil, Request, err
	}
	kind := c.E.Recv(pr, msg)
	return msg.Payload, kind, nil
}
