package par

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	Do(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestDoSerialWhenMaxWorkersOne(t *testing.T) {
	defer func() { MaxWorkers = 0 }()
	MaxWorkers = 1
	order := make([]int, 0, 10)
	Do(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial mode out of order: %v", order)
		}
	}
}

func TestDoZeroItems(t *testing.T) {
	Do(0, func(int) { t.Fatal("fn called for n=0") })
}

func TestDoPropagatesPanic(t *testing.T) {
	prev := MaxWorkers
	MaxWorkers = 8 // force the pooled path even on a single-CPU runner
	defer func() {
		MaxWorkers = prev
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", r)
		}
		if wp.Item != 17 || wp.Value != "boom" || len(wp.Stack) == 0 {
			t.Fatalf("WorkerPanic = item %d value %v stack %d bytes", wp.Item, wp.Value, len(wp.Stack))
		}
	}()
	Do(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestDoSerialPanicUnwrapped(t *testing.T) {
	prev := MaxWorkers
	MaxWorkers = 1
	defer func() {
		MaxWorkers = prev
		if r := recover(); r != "boom" {
			t.Fatalf("serial panic = %v, want raw \"boom\"", r)
		}
	}()
	Do(4, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
}

// TestNestedDoBoundedConcurrency pins the global-budget property: nested
// fan-out (a sweep whose items shard work internally) must not multiply
// into workers² concurrent bodies — innermost executions stay bounded by
// the configured cap, because extra workers come from one process-wide
// budget and callers merely participate.
func TestNestedDoBoundedConcurrency(t *testing.T) {
	prev := MaxWorkers
	MaxWorkers = 4
	defer func() { MaxWorkers = prev }()

	var active, peak atomic.Int64
	Do(8, func(int) {
		Do(8, func(int) {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			active.Add(-1)
		})
	})
	if got := peak.Load(); got > 4 {
		t.Fatalf("peak concurrent bodies = %d, want <= MaxWorkers (4)", got)
	}
}
