// Package par is the worker pool under Whodunit's parallel experiment
// sweeps. Work items are identified by dense indexes and results are
// written into caller-owned slots by index, so a sweep's output is
// bit-identical no matter how many workers run it or how the scheduler
// interleaves them — determinism comes from per-item seeding (every
// simulator run owns its RNG streams), not from execution order.
//
// The pool bounds concurrency globally, not per call: Do's calling
// goroutine always works through items itself, and extra workers are
// spawned only while the process-wide budget (MaxWorkers-1 extras) has
// room. Nested fan-out — a sweep of simulations whose workload
// generators shard internally — therefore cannot multiply into
// workers² concurrent simulations, and a nested Do can never deadlock:
// with no budget left it simply degrades to the caller running its items
// serially.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// MaxWorkers caps process-wide pool concurrency; 0 (the default) means
// GOMAXPROCS. Set it to 1 to force serial execution — the determinism
// regression tests run every sweep both ways and assert identical
// results. It is read at each Do call.
var MaxWorkers int

// extras counts spawned pool workers currently alive across every Do in
// the process (the callers' own goroutines are not counted — they were
// already running).
var extras atomic.Int64

// Limit reports the effective concurrency cap (MaxWorkers, or GOMAXPROCS
// when unset). WithShards(0) sizes an app's time-domain count from it,
// so "one shard per worker" tracks the same knob the sweep pool honors.
func Limit() int { return limit() }

// limit reports the configured concurrency cap.
func limit() int {
	w := MaxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// claimExtra reserves one extra-worker slot from the global budget,
// reporting whether one was available.
func claimExtra() bool {
	budget := int64(limit() - 1)
	for {
		cur := extras.Load()
		if cur >= budget {
			return false
		}
		if extras.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// WorkerPanic wraps a panic that escaped a pool worker, preserving the
// failing item and the panicking goroutine's stack (the re-raise on the
// calling goroutine would otherwise lose it).
type WorkerPanic struct {
	Item  int
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic on item %d: %v\n%s", p.Item, p.Value, p.Stack)
}

// Do runs fn(i) for every i in [0, n) and returns when all calls have
// finished. The calling goroutine works through items itself; extra
// workers join while the global budget allows. Items are handed out
// through an atomic counter, so callers must not depend on execution
// order — write results into a preallocated slice by index. A panic in
// any fn stops further items from being dispatched (in-flight ones
// finish) and is re-raised on the calling goroutine as a *WorkerPanic
// carrying the original stack — simulated-application models report
// fatal misconfiguration by panicking, and those must neither vanish
// into a worker nor burn the rest of a long sweep first. (When Do runs
// fully serially — MaxWorkers=1 — panics propagate unwrapped with their
// natural stack.)
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || limit() == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *WorkerPanic
	)
	loop := func() {
		for {
			panicMu.Lock()
			stop := panicked != nil
			panicMu.Unlock()
			if stop {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicked == nil {
							panicked = &WorkerPanic{Item: i, Value: r, Stack: debug.Stack()}
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	for spawned := 0; spawned < n-1 && claimExtra(); spawned++ {
		wg.Add(1)
		go func() {
			defer extras.Add(-1)
			defer wg.Done()
			loop()
		}()
	}
	loop()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
