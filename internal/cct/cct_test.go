package cct

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSamplesAndTotals(t *testing.T) {
	tr := New("ctx")
	tr.AddSamples([]string{"main", "foo"}, 3)
	tr.AddSamples([]string{"main", "foo", "bar"}, 2)
	tr.AddSamples([]string{"main"}, 1)
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	if n := tr.Find("main", "foo"); n == nil || n.Self != 3 {
		t.Fatalf("main>foo self = %v", n)
	}
	if inc := tr.Find("main").Inclusive(); inc != 6 {
		t.Fatalf("main inclusive = %d, want 6", inc)
	}
	if inc := tr.Find("main", "foo").Inclusive(); inc != 5 {
		t.Fatalf("foo inclusive = %d, want 5", inc)
	}
}

func TestFindMissing(t *testing.T) {
	tr := New("")
	if tr.Find("nope") != nil {
		t.Fatal("Find on empty tree should be nil")
	}
	tr.AddSamples([]string{"a"}, 1)
	if tr.Find("a", "b") != nil {
		t.Fatal("Find of missing child should be nil")
	}
}

func TestAddCallCounts(t *testing.T) {
	tr := New("")
	for i := 0; i < 5; i++ {
		tr.AddCall([]string{"main", "f"})
	}
	if n := tr.Find("main", "f"); n.Calls != 5 {
		t.Fatalf("calls = %d, want 5", n.Calls)
	}
	if tr.Total() != 0 {
		t.Fatal("calls must not count as samples")
	}
}

func TestMerge(t *testing.T) {
	a := New("x")
	a.AddSamples([]string{"m", "f"}, 2)
	b := New("x")
	b.AddSamples([]string{"m", "f"}, 3)
	b.AddSamples([]string{"m", "g"}, 1)
	a.Merge(b)
	if a.Total() != 6 {
		t.Fatalf("merged total = %d, want 6", a.Total())
	}
	if a.Find("m", "f").Self != 5 || a.Find("m", "g").Self != 1 {
		t.Fatal("merge did not sum per-node samples")
	}
}

func TestChildrenSorted(t *testing.T) {
	tr := New("")
	for _, f := range []string{"zeta", "alpha", "mid"} {
		tr.Root.Child(f)
	}
	kids := tr.Root.Children()
	names := []string{kids[0].Frame, kids[1].Frame, kids[2].Frame}
	if !reflect.DeepEqual(names, []string{"alpha", "mid", "zeta"}) {
		t.Fatalf("children order = %v", names)
	}
}

func TestRenderPercentagesAndElision(t *testing.T) {
	tr := New("myctx")
	tr.AddSamples([]string{"main", "hot"}, 97)
	tr.AddSamples([]string{"main", "cold"}, 3)
	var sb strings.Builder
	tr.Render(&sb, tr.Total(), 5.0)
	out := sb.String()
	if !strings.Contains(out, "context: myctx") {
		t.Fatalf("missing label: %s", out)
	}
	if !strings.Contains(out, "hot") || strings.Contains(out, "cold") {
		t.Fatalf("elision wrong: %s", out)
	}
	if !strings.Contains(out, "97.00%") {
		t.Fatalf("missing percentage: %s", out)
	}
}

func TestWalkPreorder(t *testing.T) {
	tr := New("")
	tr.AddSamples([]string{"a", "b"}, 1)
	tr.AddSamples([]string{"a", "c"}, 1)
	tr.AddSamples([]string{"d"}, 1)
	var seen []string
	tr.Walk(func(n *Node, depth int) { seen = append(seen, n.Frame) })
	if !reflect.DeepEqual(seen, []string{"a", "b", "c", "d"}) {
		t.Fatalf("walk order = %v", seen)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	tr := New("lbl")
	tr.AddSamples([]string{"m", "f", "g"}, 4)
	tr.AddSamples([]string{"m"}, 1)
	tr.AddCall([]string{"m", "f"})
	recs := tr.Flatten()
	back := FromRecords("lbl", recs)
	if back.Total() != tr.Total() {
		t.Fatalf("round-trip total = %d, want %d", back.Total(), tr.Total())
	}
	if back.Find("m", "f", "g").Self != 4 || back.Find("m", "f").Calls != 1 {
		t.Fatal("round-trip lost node data")
	}
}

func TestQuickFlattenPreservesTotals(t *testing.T) {
	frames := []string{"a", "b", "c", "d"}
	f := func(ops []uint16) bool {
		tr := New("q")
		for _, op := range ops {
			depth := int(op%3) + 1
			path := make([]string, depth)
			for i := range path {
				path[i] = frames[int(op>>(2*i))%len(frames)]
			}
			tr.AddSamples(path, int64(op%7)+1)
		}
		back := FromRecords("q", tr.Flatten())
		if back.Total() != tr.Total() {
			return false
		}
		// Inclusive at root must match too.
		return back.Root.Inclusive() == tr.Root.Inclusive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeIsAdditive(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		build := func(vals []uint8) *Tree {
			tr := New("")
			for _, v := range vals {
				tr.AddSamples([]string{"m", string(rune('a' + v%4))}, int64(v%5)+1)
			}
			return tr
		}
		a, b := build(xs), build(ys)
		wantTotal := a.Total() + b.Total()
		a.Merge(b)
		return a.Total() == wantTotal && a.Root.Inclusive() == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
