package cct

import "testing"

// BenchmarkCCTAddSamples measures the per-sample CCT accumulation: walk
// the current call path to its node and bump the counter. The IDs
// variant is the profiler's hot path (the probe keeps its stack interned);
// the Strings variant is the compatibility path and shows what interning
// saves.
func BenchmarkCCTAddSamples(b *testing.B) {
	path := []string{"main", "serve", "handler", "read", "parse"}

	b.Run("IDs", func(b *testing.B) {
		b.ReportAllocs()
		tr := New("(bench)")
		ids := make([]FrameID, len(path))
		for i, f := range path {
			ids[i] = tr.Frames().ID(f)
		}
		tr.AddSamplesIDs(ids, 1) // create the path nodes
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.AddSamplesIDs(ids, 1)
		}
	})

	b.Run("Strings", func(b *testing.B) {
		b.ReportAllocs()
		tr := New("(bench)")
		tr.AddSamples(path, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.AddSamples(path, 1)
		}
	})
}

// TestAddSamplesIDsZeroAllocSteadyState pins the allocation contract the
// profiler relies on.
func TestAddSamplesIDsZeroAllocSteadyState(t *testing.T) {
	tr := New("(t)")
	ids := []FrameID{tr.Frames().ID("a"), tr.Frames().ID("b"), tr.Frames().ID("c")}
	tr.AddSamplesIDs(ids, 1)
	if allocs := testing.AllocsPerRun(200, func() { tr.AddSamplesIDs(ids, 1) }); allocs != 0 {
		t.Fatalf("AddSamplesIDs allocates %.2f allocs/op in steady state, want 0", allocs)
	}
}
