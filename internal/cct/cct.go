// Package cct implements Calling Context Trees (Ammons/Ball/Larus), the
// data structure Whodunit's call-path profiler core keeps per transaction
// context (§7.1). Each tree accumulates statistical profile samples (and
// call counts, for the gprof-style baseline) along call paths; the root of
// each tree is annotated with the transaction context it profiles.
//
// Frame names are interned: a FrameTable maps each distinct procedure
// name to a small integer FrameID exactly once, tree nodes key their
// children by FrameID, and the hot accumulation paths (AddSamplesIDs,
// AddCallIDs) walk ID slices without touching a string. Names are
// resolved back only at presentation time (Render, Flatten, Children).
// A profiler shares one FrameTable across all its trees so a probe's
// interned call stack is valid in whichever context tree a sample lands.
package cct

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FrameID is an interned procedure-frame name. IDs are dense and start at
// 0, so they double as indexes into the table's name slice.
type FrameID uint32

// FrameTable interns frame names. It is not safe for concurrent use; each
// profiler (or tree) owns one.
type FrameTable struct {
	ids   map[string]FrameID
	names []string
}

// NewFrameTable returns an empty table.
func NewFrameTable() *FrameTable {
	return &FrameTable{ids: make(map[string]FrameID)}
}

// ID interns name, returning its stable FrameID.
func (ft *FrameTable) ID(name string) FrameID {
	if id, ok := ft.ids[name]; ok {
		return id
	}
	id := FrameID(len(ft.names))
	ft.ids[name] = id
	ft.names = append(ft.names, name)
	return id
}

// Name resolves an ID issued by this table.
func (ft *FrameTable) Name(id FrameID) string { return ft.names[id] }

// Lookup returns the ID of an already-interned name without interning it.
func (ft *FrameTable) Lookup(name string) (FrameID, bool) {
	id, ok := ft.ids[name]
	return id, ok
}

// Len reports the number of interned frames.
func (ft *FrameTable) Len() int { return len(ft.names) }

// Node is one procedure frame in a calling context tree. Self counts
// samples attributed to the frame itself; call counts are kept for the
// instrumented (gprof-like) mode.
type Node struct {
	Frame    string // resolved name, fixed at node creation
	Self     int64
	Calls    int64
	id       FrameID
	ft       *FrameTable
	parent   *Node
	children map[FrameID]*Node
}

// Tree is a calling context tree. Label carries the transaction-context
// annotation (a rendered context or synopsis chain).
type Tree struct {
	Label string
	Root  *Node
	total int64
	ft    *FrameTable
}

// New returns an empty tree annotated with label, owning a private frame
// table.
func New(label string) *Tree { return NewShared(label, NewFrameTable()) }

// NewShared returns an empty tree annotated with label whose frames are
// interned in ft. Trees sharing one table can exchange FrameIDs directly
// — the profiler keeps one table per stage so a probe's interned stack
// lands in any of the stage's per-context trees without re-interning.
func NewShared(label string, ft *FrameTable) *Tree {
	return &Tree{Label: label, Root: &Node{Frame: "(root)", ft: ft}, ft: ft}
}

// Frames returns the tree's frame table.
func (t *Tree) Frames() *FrameTable { return t.ft }

// Total reports the total number of samples in the tree.
func (t *Tree) Total() int64 { return t.total }

// Child returns (creating if necessary) the child of n for frame.
func (n *Node) Child(frame string) *Node { return n.child(n.ft.ID(frame)) }

// child is the hot-path variant of Child: the frame is already interned.
func (n *Node) child(id FrameID) *Node {
	if n.children == nil {
		n.children = make(map[FrameID]*Node)
	}
	c, ok := n.children[id]
	if !ok {
		c = &Node{Frame: n.ft.Name(id), id: id, ft: n.ft, parent: n}
		n.children[id] = c
	}
	return c
}

// Parent returns the parent node (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// ID returns the node's interned frame id (meaningless for the root).
func (n *Node) ID() FrameID { return n.id }

// ChildByID returns the child for an already-interned frame without
// creating it, or nil. Together with ChildIDs it is the walk hook for
// structural matching across trees that share a FrameTable (Report
// diffing): matched-node walks compare FrameIDs and never re-intern
// frame names.
func (n *Node) ChildByID(id FrameID) *Node {
	return n.children[id]
}

// ChildIDs returns the node's children's frame ids sorted by frame name
// — the same deterministic order Children uses, without materializing
// the child nodes.
func (n *Node) ChildIDs() []FrameID {
	out := make([]FrameID, 0, len(n.children))
	for id := range n.children {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return n.ft.names[out[i]] < n.ft.names[out[j]] })
	return out
}

// Children returns the node's children sorted by frame name, for
// deterministic iteration.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	return out
}

// Path returns the node for the given call path, creating intermediate
// nodes as needed. An empty path returns the root.
func (t *Tree) Path(path []string) *Node {
	n := t.Root
	for _, f := range path {
		n = n.child(t.ft.ID(f))
	}
	return n
}

// PathIDs is Path for an already-interned call path.
func (t *Tree) PathIDs(ids []FrameID) *Node {
	n := t.Root
	for _, id := range ids {
		n = n.child(id)
	}
	return n
}

// Find returns the node at path without creating it, or nil.
func (t *Tree) Find(path ...string) *Node {
	n := t.Root
	for _, f := range path {
		id, ok := t.ft.ids[f]
		if !ok || n.children == nil {
			return nil
		}
		c, ok := n.children[id]
		if !ok {
			return nil
		}
		n = c
	}
	return n
}

// AddSamples attributes n samples to the leaf of path.
func (t *Tree) AddSamples(path []string, n int64) {
	t.Path(path).Self += n
	t.total += n
}

// AddSamplesIDs is AddSamples for an already-interned call path — the
// profiler's per-sample hot path. It performs no string work and, once
// the path's nodes exist, no allocation.
func (t *Tree) AddSamplesIDs(ids []FrameID, n int64) {
	t.PathIDs(ids).Self += n
	t.total += n
}

// AddCall counts one invocation of the leaf of path (instrumented mode).
func (t *Tree) AddCall(path []string) {
	t.Path(path).Calls++
}

// AddCallIDs is AddCall for an already-interned call path.
func (t *Tree) AddCallIDs(ids []FrameID) {
	t.PathIDs(ids).Calls++
}

// Inclusive reports the node's inclusive sample count (itself plus all
// descendants).
func (n *Node) Inclusive() int64 {
	sum := n.Self
	for _, c := range n.children {
		sum += c.Inclusive()
	}
	return sum
}

// InclusiveCalls reports the node's inclusive call count (itself plus
// all descendants) — the aggregate a diff reports for a subtree present
// in only one of two runs.
func (n *Node) InclusiveCalls() int64 {
	sum := n.Calls
	for _, c := range n.children {
		sum += c.InclusiveCalls()
	}
	return sum
}

// Merge adds every sample and call count of src into t. The trees need
// not share a frame table: frames are matched by name.
func (t *Tree) Merge(src *Tree) {
	var rec func(dst, s *Node)
	rec = func(dst, s *Node) {
		dst.Self += s.Self
		dst.Calls += s.Calls
		for _, c := range s.children {
			rec(dst.Child(c.Frame), c)
		}
	}
	rec(t.Root, src.Root)
	t.total += src.total
}

// CloneShared returns a deep copy of t whose frames are interned in ft —
// the detach step of a profiler snapshot. The copy shares nothing mutable
// with t (frame-name strings are immutable), so it can be read from any
// goroutine while further samples accumulate into t. Children are copied
// in name order, so the clone's frame table interns names in a
// deterministic order.
func (t *Tree) CloneShared(ft *FrameTable) *Tree {
	out := NewShared(t.Label, ft)
	var rec func(dst, src *Node)
	rec = func(dst, src *Node) {
		dst.Self, dst.Calls = src.Self, src.Calls
		for _, c := range src.Children() {
			rec(dst.child(ft.ID(c.Frame)), c)
		}
	}
	rec(out.Root, t.Root)
	out.total = t.total
	return out
}

// Walk visits every node in deterministic (preorder, name-sorted) order.
// depth is 0 for the root's immediate children.
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		for _, c := range n.Children() {
			fn(c, depth)
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
}

// Render writes an indented text rendering of the tree to w. denom is the
// sample count used as 100% (pass t.Total() for tree-local percentages or
// a profile-wide total for Whodunit-style figures); 0 suppresses
// percentages. Nodes are ordered by descending inclusive count, ties by
// name, and frames below minPct% of denom are elided.
func (t *Tree) Render(w io.Writer, denom int64, minPct float64) {
	if t.Label != "" {
		fmt.Fprintf(w, "context: %s\n", t.Label)
	}
	var rec func(n *Node, indent int)
	rec = func(n *Node, indent int) {
		kids := n.Children()
		sort.Slice(kids, func(i, j int) bool {
			a, b := kids[i].Inclusive(), kids[j].Inclusive()
			if a != b {
				return a > b
			}
			return kids[i].Frame < kids[j].Frame
		})
		for _, c := range kids {
			inc := c.Inclusive()
			pct := 0.0
			if denom > 0 {
				pct = 100 * float64(inc) / float64(denom)
			}
			if denom > 0 && pct < minPct {
				continue
			}
			pad := strings.Repeat("  ", indent)
			if denom > 0 {
				fmt.Fprintf(w, "%s%-*s %6.2f%%  (self %d, incl %d)\n", pad, 40-2*indent, c.Frame, pct, c.Self, inc)
			} else {
				fmt.Fprintf(w, "%s%s (self %d, calls %d)\n", pad, c.Frame, c.Self, c.Calls)
			}
			rec(c, indent+1)
		}
	}
	rec(t.Root, 0)
}

// FlatRecord is a serializable (path, self, calls) triple; a tree flattens
// to a list of records and can be rebuilt from one. Used for writing
// per-stage profiles to disk for post-mortem stitching.
type FlatRecord struct {
	Path  []string `json:"path"`
	Self  int64    `json:"self"`
	Calls int64    `json:"calls,omitempty"`
}

// Flatten converts the tree to records in deterministic order, including
// only nodes with nonzero self samples or calls.
func (t *Tree) Flatten() []FlatRecord {
	var out []FlatRecord
	var path []string
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children() {
			path = append(path, c.Frame)
			if c.Self != 0 || c.Calls != 0 {
				p := make([]string, len(path))
				copy(p, path)
				out = append(out, FlatRecord{Path: p, Self: c.Self, Calls: c.Calls})
			}
			rec(c)
			path = path[:len(path)-1]
		}
	}
	rec(t.Root)
	return out
}

// FromRecords rebuilds a tree from flattened records.
func FromRecords(label string, recs []FlatRecord) *Tree {
	return FromRecordsShared(label, NewFrameTable(), recs)
}

// FromRecordsShared rebuilds a tree from flattened records, interning
// its frames in ft. Rebuilding two runs' dumps into one shared table is
// what lets a diff match their nodes by FrameID alone: each distinct
// frame name is interned exactly once, at tree build.
func FromRecordsShared(label string, ft *FrameTable, recs []FlatRecord) *Tree {
	t := NewShared(label, ft)
	for _, r := range recs {
		n := t.Path(r.Path)
		n.Self += r.Self
		n.Calls += r.Calls
		t.total += r.Self
	}
	return t
}
