// Package cct implements Calling Context Trees (Ammons/Ball/Larus), the
// data structure Whodunit's call-path profiler core keeps per transaction
// context (§7.1). Each tree accumulates statistical profile samples (and
// call counts, for the gprof-style baseline) along call paths; the root of
// each tree is annotated with the transaction context it profiles.
package cct

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one procedure frame in a calling context tree. Self counts
// samples attributed to the frame itself; call counts are kept for the
// instrumented (gprof-like) mode.
type Node struct {
	Frame    string
	Self     int64
	Calls    int64
	parent   *Node
	children map[string]*Node
}

// Tree is a calling context tree. Label carries the transaction-context
// annotation (a rendered context or synopsis chain).
type Tree struct {
	Label string
	Root  *Node
	total int64
}

// New returns an empty tree annotated with label.
func New(label string) *Tree {
	return &Tree{Label: label, Root: &Node{Frame: "(root)"}}
}

// Total reports the total number of samples in the tree.
func (t *Tree) Total() int64 { return t.total }

// Child returns (creating if necessary) the child of n for frame.
func (n *Node) Child(frame string) *Node {
	if n.children == nil {
		n.children = make(map[string]*Node)
	}
	c, ok := n.children[frame]
	if !ok {
		c = &Node{Frame: frame, parent: n}
		n.children[frame] = c
	}
	return c
}

// Parent returns the parent node (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children sorted by frame name, for
// deterministic iteration.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	return out
}

// Path returns the node for the given call path, creating intermediate
// nodes as needed. An empty path returns the root.
func (t *Tree) Path(path []string) *Node {
	n := t.Root
	for _, f := range path {
		n = n.Child(f)
	}
	return n
}

// Find returns the node at path without creating it, or nil.
func (t *Tree) Find(path ...string) *Node {
	n := t.Root
	for _, f := range path {
		if n.children == nil {
			return nil
		}
		c, ok := n.children[f]
		if !ok {
			return nil
		}
		n = c
	}
	return n
}

// AddSamples attributes n samples to the leaf of path.
func (t *Tree) AddSamples(path []string, n int64) {
	t.Path(path).Self += n
	t.total += n
}

// AddCall counts one invocation of the leaf of path (instrumented mode).
func (t *Tree) AddCall(path []string) {
	t.Path(path).Calls++
}

// Inclusive reports the node's inclusive sample count (itself plus all
// descendants).
func (n *Node) Inclusive() int64 {
	sum := n.Self
	for _, c := range n.children {
		sum += c.Inclusive()
	}
	return sum
}

// Merge adds every sample and call count of src into t.
func (t *Tree) Merge(src *Tree) {
	var rec func(dst, s *Node)
	rec = func(dst, s *Node) {
		dst.Self += s.Self
		dst.Calls += s.Calls
		for _, c := range s.children {
			rec(dst.Child(c.Frame), c)
		}
	}
	rec(t.Root, src.Root)
	t.total += src.total
}

// Walk visits every node in deterministic (preorder, name-sorted) order.
// depth is 0 for the root's immediate children.
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		for _, c := range n.Children() {
			fn(c, depth)
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
}

// Render writes an indented text rendering of the tree to w. denom is the
// sample count used as 100% (pass t.Total() for tree-local percentages or
// a profile-wide total for Whodunit-style figures); 0 suppresses
// percentages. Nodes are ordered by descending inclusive count, ties by
// name, and frames below minPct% of denom are elided.
func (t *Tree) Render(w io.Writer, denom int64, minPct float64) {
	if t.Label != "" {
		fmt.Fprintf(w, "context: %s\n", t.Label)
	}
	var rec func(n *Node, indent int)
	rec = func(n *Node, indent int) {
		kids := n.Children()
		sort.Slice(kids, func(i, j int) bool {
			a, b := kids[i].Inclusive(), kids[j].Inclusive()
			if a != b {
				return a > b
			}
			return kids[i].Frame < kids[j].Frame
		})
		for _, c := range kids {
			inc := c.Inclusive()
			pct := 0.0
			if denom > 0 {
				pct = 100 * float64(inc) / float64(denom)
			}
			if denom > 0 && pct < minPct {
				continue
			}
			pad := strings.Repeat("  ", indent)
			if denom > 0 {
				fmt.Fprintf(w, "%s%-*s %6.2f%%  (self %d, incl %d)\n", pad, 40-2*indent, c.Frame, pct, c.Self, inc)
			} else {
				fmt.Fprintf(w, "%s%s (self %d, calls %d)\n", pad, c.Frame, c.Self, c.Calls)
			}
			rec(c, indent+1)
		}
	}
	rec(t.Root, 0)
}

// FlatRecord is a serializable (path, self, calls) triple; a tree flattens
// to a list of records and can be rebuilt from one. Used for writing
// per-stage profiles to disk for post-mortem stitching.
type FlatRecord struct {
	Path  []string `json:"path"`
	Self  int64    `json:"self"`
	Calls int64    `json:"calls,omitempty"`
}

// Flatten converts the tree to records in deterministic order, including
// only nodes with nonzero self samples or calls.
func (t *Tree) Flatten() []FlatRecord {
	var out []FlatRecord
	var path []string
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children() {
			path = append(path, c.Frame)
			if c.Self != 0 || c.Calls != 0 {
				p := make([]string, len(path))
				copy(p, path)
				out = append(out, FlatRecord{Path: p, Self: c.Self, Calls: c.Calls})
			}
			rec(c)
			path = path[:len(path)-1]
		}
	}
	rec(t.Root)
	return out
}

// FromRecords rebuilds a tree from flattened records.
func FromRecords(label string, recs []FlatRecord) *Tree {
	t := New(label)
	for _, r := range recs {
		n := t.Path(r.Path)
		n.Self += r.Self
		n.Calls += r.Calls
		t.total += r.Self
	}
	return t
}
