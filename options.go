package whodunit

import "whodunit/internal/crosstalk"

// Option configures an App at construction time.
type Option func(*App)

// WithMode sets the default profiling mode for every stage of the app
// (individual stages can override it with StageMode).
func WithMode(m Mode) Option {
	return func(a *App) { a.mode = m }
}

// WithCores sets the core count of the app's shared CPU (default 2).
// Stages with a private CPU (StageCPU) are unaffected.
func WithCores(n int) Option {
	return func(a *App) {
		if n < 1 {
			panic("whodunit: WithCores needs at least one core")
		}
		a.cores = n
	}
}

// WithSeed seeds the app's deterministic random number generator,
// available through App.RNG for workload generation.
func WithSeed(seed uint64) Option {
	return func(a *App) { a.seed = seed }
}

// WithSamplingInterval overrides the profilers' sampling period (the
// default is profiler.DefaultInterval, 666 samples per CPU-second).
func WithSamplingInterval(d Duration) Option {
	return func(a *App) {
		if d <= 0 {
			panic("whodunit: sampling interval must be positive")
		}
		a.interval = d
	}
}

// WithCrosstalk attaches a crosstalk monitor to the app: every lock
// created through App.NewLock reports contention to it, classified into
// transaction types by classify. The resulting matrix lands in
// Report.Crosstalk.
func WithCrosstalk(classify func(TxnCtxt) string) Option {
	return func(a *App) {
		if classify == nil {
			panic("whodunit: WithCrosstalk needs a classifier")
		}
		a.monitor = crosstalk.NewMonitor(classify, nil)
	}
}

// WithFlowDetection equips the app with a machine emulator for critical
// sections and — when the app profiles in ModeWhodunit — the
// shared-memory flow tracker of §3, with the token plumbing between
// probe transaction contexts and tracker tokens fully wired. It is pure
// configuration: Queue.Push/Pop and Stage.EmulatedCS then run their
// critical sections under emulation and propagate contexts across
// threads automatically (§3.5), and detected flows land in Report.Flows.
// In the other profiling modes the machine executes the same critical
// sections natively (direct cost, no tracing), as §7.2 prescribes.
func WithFlowDetection() Option {
	return func(a *App) { a.flowWanted = true }
}

// WithClockRate sets the emulated machine's clock in cycles per second
// of virtual time (default DefaultCyclesPerSecond, the paper's 2.4 GHz
// Xeon); it converts critical-section cycle costs to CPU demand.
func WithClockRate(cyclesPerSecond int64) Option {
	return func(a *App) {
		if cyclesPerSecond <= 0 {
			panic("whodunit: WithClockRate needs a positive rate")
		}
		a.cyclesPerSec = cyclesPerSecond
	}
}

// WithShards splits the app's simulated time into n epoch-synchronized
// time domains, so one big run parallelizes across pool workers
// (internal/par) instead of only sweeps doing so. n = 0 means one shard
// per pool worker (par.Limit, i.e. GOMAXPROCS unless capped). Work is
// placed onto domains with StageShard, App.GoShard and App.NewQueueOn,
// and domains communicate exclusively through positive-latency
// App.Pipes; the minimum pipe latency is the lookahead that sets the
// epoch width. Reports are bit-identical for every shard count — serial
// and sharded runs of the same model diff empty.
//
// WithShards is a transparent no-op (the app collapses to one domain,
// and the shard-indexed placement APIs all map to domain 0) when the
// app has no positive-latency pipes, or when it uses machinery that
// reads cross-stage state from one scheduler's context: crosstalk
// monitoring (WithCrosstalk), flow detection (WithFlowDetection),
// windowed aggregation (WithWindow), or a fault plan
// (WithFaults/SetFaults).
func WithShards(n int) Option {
	return func(a *App) {
		if n < 0 {
			panic("whodunit: WithShards needs a non-negative shard count")
		}
		a.shardsWanted = n
		a.shardsSet = true
	}
}

// WithFaults installs a deterministic fault plan: stage crashes and
// restarts, message drop/duplication/delay, CPU stalls and injected
// failures, all scheduled in virtual time and drawn from a seeded RNG,
// so a faulted run replays bit-identically. The plan is validated here;
// an invalid plan panics. Timed faults naming stages are resolved when
// the run starts (stages are declared after NewApp), so the plan may
// reference stages not yet declared. See App.SetFaults for installing a
// plan on an already-built app.
func WithFaults(plan *FaultPlan) Option {
	return func(a *App) {
		if err := plan.Validate(); err != nil {
			panic(err)
		}
		a.faultPlan = plan
	}
}

// WithWindow makes the app a windowed (continuous-profiling) run:
// profiles are aggregated into fixed d-length virtual-time windows, each
// retired as its own Report (see App.OnWindow). Windowed apps must be
// run with a stop condition.
func WithWindow(d Duration) Option {
	return func(a *App) {
		if d <= 0 {
			panic("whodunit: WithWindow needs a positive window length")
		}
		a.window = d
	}
}

// StageOption configures a single Stage at declaration time.
type StageOption func(*Stage)

// StageMode overrides the app-wide profiling mode for one stage.
func StageMode(m Mode) StageOption {
	return func(st *Stage) { st.mode = m }
}

// StageCPU gives the stage a private CPU with the given core count
// instead of the app's shared one — a stage on its own machine.
func StageCPU(cores int) StageOption {
	return func(st *Stage) {
		if cores < 1 {
			panic("whodunit: StageCPU needs at least one core")
		}
		st.privateCores = cores
	}
}

// StageShard pins the stage (its threads, private CPU and profiler) to
// time domain k%Shards() — the affinity knob of a sharded app (see
// WithShards). A stage off shard 0 must have a private CPU (StageCPU):
// the app's shared CPU lives on domain 0 and cannot be charged from
// another domain.
func StageShard(k int) StageOption {
	return func(st *Stage) {
		if k < 0 {
			panic("whodunit: StageShard needs a non-negative shard index")
		}
		st.shard = k
	}
}
